package experiments

import (
	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
)

func init() { register("table2", table2Plan) }

// Table2 reproduces Table 2: read-modify-write times for 4 KB (8-sector)
// and track-length (334-sector) transfers on the Atlas 10K and the MEMS
// device. The disk must wait out nearly a full rotation between the read
// and the write of the same sectors; the MEMS device only turns the sled
// around (§6.2). As in the paper, command overheads and the initial
// positioning are excluded — the table isolates the re-access cost.
func Table2(p Params) []Table { return mustRun(table2Plan(p)) }

// Four direct-access measurements on private devices — one cheap job.
func table2Plan(p Params) *Plan {
	return tablesJob("table2", p.Seed, table2Body)
}

func table2Body() []Table {
	t := Table{
		ID:      "table2",
		Title:   "read-modify-write component times (ms)",
		Columns: []string{"", "Atlas 10K ×8", "Atlas 10K ×334", "MEMS ×8", "MEMS ×334"},
	}

	dRead8, dRep8, dWrite8 := diskRMW(8)
	dRead334, dRep334, dWrite334 := diskRMW(334)
	mRead8, mRep8, mWrite8 := memsRMW(8)
	mRead334, mRep334, mWrite334 := memsRMW(334)

	t.AddRow("read", ms(dRead8), ms(dRead334), ms(mRead8), ms(mRead334))
	t.AddRow("reposition", ms(dRep8), ms(dRep334), ms(mRep8), ms(mRep334))
	t.AddRow("write", ms(dWrite8), ms(dWrite334), ms(mWrite8), ms(mWrite334))
	t.AddRow("total", ms(dRead8+dRep8+dWrite8), ms(dRead334+dRep334+dWrite334),
		ms(mRead8+mRep8+mWrite8), ms(mRead334+mRep334+mWrite334))
	return []Table{t}
}

// diskRMW measures the disk's read/reposition/write decomposition on the
// outermost (334-sector) track, with overheads zeroed.
func diskRMW(blocks int) (read, reposition, write float64) {
	cfg := disk.Atlas10K()
	cfg.Overhead = 0
	cfg.WriteSettle = 0
	d := disk.MustDevice(cfg)
	d.Reset()
	transfer := float64(blocks) * d.RotationPeriod() / 334
	// Position at LBN 0 (track-aligned, zone 0), read once, then access
	// the same sectors again: the re-access pays the rotational gap.
	r := &core.Request{Op: core.Read, LBN: 0, Blocks: blocks}
	first := d.Access(r, 0)
	again := d.Access(&core.Request{Op: core.Write, LBN: 0, Blocks: blocks}, first)
	return transfer, again - transfer, transfer
}

// memsRMW measures the MEMS decomposition with overhead zeroed: transfer
// is ⌈n/20⌉ row passes and repositioning is one turnaround because the
// write sweeps back over the same rows in the opposite direction.
func memsRMW(blocks int) (read, reposition, write float64) {
	cfg := mems.DefaultConfig()
	cfg.Overhead = 0
	d := mems.MustDevice(cfg)
	g := d.Geometry()
	lbn := g.LBN(g.Cylinders/2, 2, 0, 0)
	r := &core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}
	read = d.Detail(r).Transfer
	d.Access(r, 0)
	wr := &core.Request{Op: core.Write, LBN: lbn, Blocks: blocks}
	det := d.Detail(wr)
	return read, det.Positioning(), det.Transfer
}
