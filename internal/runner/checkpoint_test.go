package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type ckState struct {
	Trial int     `json:"trial"`
	Sum   float64 `json:"sum"`
}

type ckParams struct {
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
}

func ckPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "state.ckpt")
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := ckPath(t)
	p := ckParams{Trials: 100, Seed: 42}
	ck, err := OpenCheckpoint(path, "mttdl", p)
	if err != nil {
		t.Fatal(err)
	}
	var missing ckState
	if ck.Load("job a", &missing) {
		t.Error("fresh checkpoint reported a saved entry")
	}
	if err := ck.Save("job a", ckState{Trial: 7, Sum: 3.5}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save("job b", ckState{Trial: 2, Sum: 1.25}); err != nil {
		t.Fatal(err)
	}

	// Reopen under the same experiment and parameters: both entries
	// survive the file round-trip.
	ck2, err := OpenCheckpoint(path, "mttdl", p)
	if err != nil {
		t.Fatal(err)
	}
	var a, b ckState
	if !ck2.Load("job a", &a) || !ck2.Load("job b", &b) {
		t.Fatal("reopened checkpoint lost entries")
	}
	if a != (ckState{Trial: 7, Sum: 3.5}) || b != (ckState{Trial: 2, Sum: 1.25}) {
		t.Errorf("reloaded states: a=%+v b=%+v", a, b)
	}
}

func TestCheckpointRejectsParameterMismatch(t *testing.T) {
	path := ckPath(t)
	if _, err := OpenCheckpoint(path, "mttdl", ckParams{Trials: 100, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	ck, _ := OpenCheckpoint(path, "mttdl", ckParams{Trials: 100, Seed: 42})
	if err := ck.Save("j", ckState{Trial: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCheckpoint(path, "mttdl", ckParams{Trials: 200, Seed: 42})
	if err == nil || !strings.Contains(err.Error(), "different parameters") {
		t.Fatalf("err = %v, want a parameter-binding refusal", err)
	}
}

func TestCheckpointRejectsWrongExperiment(t *testing.T) {
	path := ckPath(t)
	ck, err := OpenCheckpoint(path, "mttdl", ckParams{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save("j", ckState{}); err != nil {
		t.Fatal(err)
	}
	_, err = OpenCheckpoint(path, "rebuild", ckParams{})
	if err == nil || !strings.Contains(err.Error(), `experiment "mttdl"`) {
		t.Fatalf("err = %v, want a wrong-experiment refusal", err)
	}
}

func TestCheckpointRejectsCorruptFile(t *testing.T) {
	path := ckPath(t)
	if err := os.WriteFile(path, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCheckpoint(path, "mttdl", ckParams{})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want a corruption error", err)
	}
	if !strings.Contains(err.Error(), "delete it to start over") {
		t.Errorf("err %q missing the recovery hint", err)
	}
}

func TestCheckpointUnreadableEntryCountsAsAbsent(t *testing.T) {
	path := ckPath(t)
	ck, err := OpenCheckpoint(path, "mttdl", ckParams{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save("j", "a string, not a state object"); err != nil {
		t.Fatal(err)
	}
	var st ckState
	if ck.Load("j", &st) {
		t.Error("type-mismatched entry loaded as usable")
	}
}

func TestCheckpointConcurrentSaves(t *testing.T) {
	path := ckPath(t)
	ck, err := OpenCheckpoint(path, "mttdl", ckParams{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ck.Save(fmt.Sprintf("job %d", i), ckState{Trial: i}); err != nil {
				t.Errorf("save %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	ck2, err := OpenCheckpoint(path, "mttdl", ckParams{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var st ckState
		if !ck2.Load(fmt.Sprintf("job %d", i), &st) || st.Trial != i {
			t.Errorf("entry %d missing or wrong: %+v", i, st)
		}
	}
}

func TestCheckpointDeterministicBytes(t *testing.T) {
	// The file bytes are a pure function of the saved states, whatever
	// order the saves arrived in — the property resume byte-identity
	// tests lean on.
	write := func(labels []string) []byte {
		path := ckPath(t)
		ck, err := OpenCheckpoint(path, "mttdl", ckParams{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range labels {
			if err := ck.Save(l, ckState{Trial: len(l)}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := write([]string{"x", "yy", "zzz"})
	b := write([]string{"zzz", "x", "yy"})
	if string(a) != string(b) {
		t.Error("identical saves produced different file bytes")
	}
}
