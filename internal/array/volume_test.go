package array

import (
	"testing"

	"memsim/internal/core"
)

func mustVolume(t *testing.T, cfg VolumeConfig) *Volume {
	t.Helper()
	v, err := NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func parityCfg() VolumeConfig {
	return VolumeConfig{Level: VolParity, Members: 4, Spares: 1, StripeUnit: 8, PerMember: 64}
}

func mirrorCfg() VolumeConfig {
	return VolumeConfig{Level: VolMirror, Members: 2, Spares: 1, StripeUnit: 8, PerMember: 64}
}

func TestVolumeConfigValidate(t *testing.T) {
	bad := []VolumeConfig{
		{Level: VolStripe, Members: 0, StripeUnit: 8, PerMember: 64},
		{Level: VolStripe, Members: 2, Spares: -1, StripeUnit: 8, PerMember: 64},
		{Level: VolStripe, Members: 2, StripeUnit: 0, PerMember: 64},
		{Level: VolStripe, Members: 2, StripeUnit: 8, PerMember: 0},
		{Level: VolStripe, Members: 2, StripeUnit: 8, PerMember: 60}, // not a multiple
		{Level: VolMirror, Members: 1, StripeUnit: 8, PerMember: 64},
		{Level: VolParity, Members: 2, StripeUnit: 8, PerMember: 64},
		{Level: VolumeLevel(9), Members: 2, StripeUnit: 8, PerMember: 64},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v): expected an error", i, cfg)
		}
	}
	for _, cfg := range []VolumeConfig{parityCfg(), mirrorCfg(),
		{Level: VolStripe, Members: 3, StripeUnit: 8, PerMember: 64}} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", cfg.Level, err)
		}
	}
}

func TestVolumeCapacity(t *testing.T) {
	cases := []struct {
		cfg  VolumeConfig
		want int64
	}{
		{VolumeConfig{Level: VolStripe, Members: 4, StripeUnit: 8, PerMember: 64}, 256},
		{VolumeConfig{Level: VolMirror, Members: 3, StripeUnit: 8, PerMember: 64}, 64},
		{VolumeConfig{Level: VolParity, Members: 4, StripeUnit: 8, PerMember: 64}, 192},
	}
	for _, tc := range cases {
		if got := tc.cfg.Capacity(); got != tc.want {
			t.Errorf("%v capacity = %d, want %d", tc.cfg.Level, got, tc.want)
		}
	}
	if d := parityCfg().Devices(); d != 5 {
		t.Errorf("devices = %d, want 5 (4 members + 1 spare)", d)
	}
}

func TestParityMappingBijective(t *testing.T) {
	// Every volume block maps to a unique (slot, member-LBN) pair, the
	// data slot never coincides with its row's parity slot, and parity
	// rotates over all members.
	v := mustVolume(t, parityCfg())
	seen := map[[2]int64]int64{}
	paritySlots := map[int]bool{}
	for lbn := int64(0); lbn < v.Capacity(); lbn++ {
		slot, mlbn, parity := v.mapBlock(lbn)
		if slot == parity {
			t.Fatalf("lbn %d: data slot %d equals parity slot", lbn, slot)
		}
		if slot < 0 || slot >= 4 || parity < 0 || parity >= 4 {
			t.Fatalf("lbn %d: slot %d parity %d out of range", lbn, slot, parity)
		}
		key := [2]int64{int64(slot), mlbn}
		if prev, dup := seen[key]; dup {
			t.Fatalf("lbn %d and %d both map to slot %d mlbn %d", prev, lbn, slot, mlbn)
		}
		seen[key] = lbn
		paritySlots[parity] = true
	}
	if len(paritySlots) != 4 {
		t.Errorf("parity rotated over %d slots, want 4 (left-symmetric)", len(paritySlots))
	}
}

func TestMirrorReadSpread(t *testing.T) {
	// Healthy mirror reads rotate across both replicas; after a failure
	// every read lands on the survivor.
	v := mustVolume(t, mirrorCfg())
	slots := map[int]bool{}
	for lbn := int64(0); lbn < 64; lbn += 8 {
		pl, ok := v.PlanRead(lbn, 1)
		if !ok || len(pl.Phases) != 1 || len(pl.Phases[0]) != 1 {
			t.Fatalf("healthy mirror read plan = %+v ok=%v", pl, ok)
		}
		slots[pl.Phases[0][0].Slot] = true
	}
	if len(slots) != 2 {
		t.Errorf("healthy reads used %d replicas, want 2", len(slots))
	}
	if err := v.Fail(1); err != nil {
		t.Fatal(err)
	}
	for lbn := int64(0); lbn < 64; lbn += 8 {
		pl, ok := v.PlanRead(lbn, 1)
		if !ok || pl.Phases[0][0].Slot != 0 {
			t.Fatalf("degraded mirror read went to slot %d", pl.Phases[0][0].Slot)
		}
		if pl.Reconstructed {
			t.Error("mirror survivor read marked reconstructed")
		}
	}
}

func TestMirrorWritePlans(t *testing.T) {
	v := mustVolume(t, mirrorCfg())
	pl, ok := v.PlanWrite(3, 2)
	if !ok || len(pl.Phases) != 1 || len(pl.Phases[0]) != 2 {
		t.Fatalf("healthy mirror write plan = %+v ok=%v", pl, ok)
	}
	for _, op := range pl.Phases[0] {
		if op.Op != core.Write || op.LBN != 3 || op.Blocks != 2 {
			t.Errorf("bad replica op %+v", op)
		}
	}
	if err := v.Fail(0); err != nil {
		t.Fatal(err)
	}
	pl, ok = v.PlanWrite(3, 2)
	if !ok || len(pl.Phases[0]) != 1 || pl.Phases[0][0].Slot != 1 || !pl.DegradedWrite {
		t.Fatalf("degraded mirror write plan = %+v ok=%v", pl, ok)
	}
	// Mid-rebuild, writes below the watermark also refresh the spare.
	if !v.BeginRebuild() {
		t.Fatal("no rebuild with a spare available")
	}
	v.Advance(16)
	pl, _ = v.PlanWrite(3, 2)
	if len(pl.Phases[0]) != 2 {
		t.Errorf("covered write has %d ops, want 2 (survivor + spare)", len(pl.Phases[0]))
	}
	pl, _ = v.PlanWrite(40, 2) // above the watermark
	if len(pl.Phases[0]) != 1 {
		t.Errorf("uncovered write has %d ops, want 1", len(pl.Phases[0]))
	}
}

func TestParityRMWAndDegradedPlans(t *testing.T) {
	v := mustVolume(t, parityCfg())
	slot, mlbn, parity := v.mapBlock(0)

	// Healthy small write: 2-phase read-modify-write on data + parity.
	pl, ok := v.PlanWrite(0, 2)
	if !ok || len(pl.Phases) != 2 || len(pl.Phases[0]) != 2 || len(pl.Phases[1]) != 2 {
		t.Fatalf("healthy RMW plan = %+v", pl)
	}
	if pl.Phases[0][0].Op != core.Read || pl.Phases[1][0].Op != core.Write {
		t.Error("RMW phases out of order")
	}
	if pl.Phases[0][0].Slot != slot || pl.Phases[0][1].Slot != parity {
		t.Errorf("RMW targets slots %d,%d, want %d,%d",
			pl.Phases[0][0].Slot, pl.Phases[0][1].Slot, slot, parity)
	}

	// Healthy read: one op on the data slot.
	rp, ok := v.PlanRead(0, 2)
	if !ok || len(rp.Phases[0]) != 1 || rp.Phases[0][0].Slot != slot || rp.Phases[0][0].LBN != mlbn {
		t.Fatalf("healthy read plan = %+v", rp)
	}

	// Fail the data slot: reads reconstruct from the 3 surviving peers.
	if err := v.Fail(slot); err != nil {
		t.Fatal(err)
	}
	rp, ok = v.PlanRead(0, 2)
	if !ok || !rp.Reconstructed || len(rp.Phases[0]) != 3 {
		t.Fatalf("degraded read plan = %+v ok=%v", rp, ok)
	}
	for _, op := range rp.Phases[0] {
		if op.Slot == slot {
			t.Error("degraded read touched the failed slot")
		}
	}

	// Degraded write to the failed data slot: read the row's surviving
	// data members (members-2 of them), then rewrite parity.
	pl, ok = v.PlanWrite(0, 2)
	if !ok || !pl.DegradedWrite || len(pl.Phases) != 2 {
		t.Fatalf("degraded write plan = %+v ok=%v", pl, ok)
	}
	if len(pl.Phases[0]) != 2 || len(pl.Phases[1]) != 1 || pl.Phases[1][0].Slot != parity {
		t.Errorf("reconstruct-write shape = %d reads then %d writes to slot %d",
			len(pl.Phases[0]), len(pl.Phases[1]), pl.Phases[1][0].Slot)
	}

	// Rebuild past the chunk: covered ranges use the spare like a
	// healthy member again.
	if !v.BeginRebuild() {
		t.Fatal("no rebuild")
	}
	v.Advance(16)
	rp, _ = v.PlanRead(0, 2)
	if !rp.SpareRead || len(rp.Phases[0]) != 1 || rp.Phases[0][0].Slot != slot {
		t.Errorf("covered read plan = %+v", rp)
	}
	if dev := v.DeviceOf(slot); dev != 4 {
		t.Errorf("covered slot resolves to device %d, want spare 4", dev)
	}
}

func TestParityWriteToFailedParitySlot(t *testing.T) {
	v := mustVolume(t, parityCfg())
	_, _, parity := v.mapBlock(0)
	if err := v.Fail(parity); err != nil {
		t.Fatal(err)
	}
	pl, ok := v.PlanWrite(0, 2)
	if !ok || len(pl.Phases) != 1 || len(pl.Phases[0]) != 1 || pl.Phases[0][0].Op != core.Write {
		t.Fatalf("parity-dead write plan = %+v", pl)
	}
	if !pl.DegradedWrite {
		t.Error("parity-dead write not marked degraded")
	}
}

func TestStripeFailureLosesData(t *testing.T) {
	v := mustVolume(t, VolumeConfig{Level: VolStripe, Members: 3, StripeUnit: 8, PerMember: 64})
	if err := v.Fail(1); err != nil {
		t.Fatal(err)
	}
	if !v.Lost() {
		t.Fatal("stripe member failure must lose data")
	}
	if _, ok := v.PlanRead(0, 4); ok {
		t.Error("lost volume served a read")
	}
	if _, ok := v.PlanWrite(0, 4); ok {
		t.Error("lost volume accepted a write")
	}
}

func TestDoubleFailureLosesData(t *testing.T) {
	v := mustVolume(t, parityCfg())
	if err := v.Fail(0); err != nil {
		t.Fatal(err)
	}
	if v.Lost() {
		t.Fatal("single parity failure should not lose data")
	}
	if err := v.Fail(2); err != nil {
		t.Fatal(err)
	}
	if !v.Lost() {
		t.Fatal("second concurrent failure must lose data")
	}
	if _, ok := v.PlanRead(0, 1); ok {
		t.Error("lost volume served a read")
	}
}

func TestRebuildLifecycle(t *testing.T) {
	v := mustVolume(t, parityCfg())
	if v.BeginRebuild() {
		t.Fatal("rebuild started with no failure")
	}
	if err := v.Fail(2); err != nil {
		t.Fatal(err)
	}
	if !v.BeginRebuild() {
		t.Fatal("rebuild refused with a spare available")
	}
	if v.BeginRebuild() {
		t.Fatal("second concurrent rebuild")
	}
	total := 0
	for !v.RebuildDone() {
		pl, n := v.PlanRebuildChunk(24)
		if n == 0 {
			t.Fatal("rebuild stalled")
		}
		// Parity rebuild chunk: read the 3 surviving peers, write the spare.
		if len(pl.Phases) != 2 || len(pl.Phases[0]) != 3 || len(pl.Phases[1]) != 1 {
			t.Fatalf("chunk plan shape = %+v", pl)
		}
		w := pl.Phases[1][0]
		if w.Slot != 2 || w.Op != core.Write || w.LBN != int64(total) {
			t.Fatalf("chunk write = %+v at watermark %d", w, total)
		}
		v.Advance(n)
		total += n
	}
	if total != 64 {
		t.Errorf("rebuilt %d sectors, want 64", total)
	}
	v.FinishRebuild()
	if v.Degraded() || v.Rebuilding() {
		t.Error("volume still degraded after failover")
	}
	if dev := v.DeviceOf(2); dev != 4 {
		t.Errorf("slot 2 resolves to device %d after failover, want spare 4", dev)
	}
	// A second failure after full failover is again a single failure.
	if err := v.Fail(0); err != nil {
		t.Fatal(err)
	}
	if v.Lost() {
		t.Error("post-failover failure treated as a double fault")
	}
	if v.BeginRebuild() {
		t.Error("rebuild began with the spare pool exhausted")
	}
}

func TestReplaceDeadOp(t *testing.T) {
	v := mustVolume(t, parityCfg())
	if err := v.Fail(1); err != nil {
		t.Fatal(err)
	}

	// Live-slot ops pass through untouched.
	op := MemberOp{Slot: 0, Op: core.Read, LBN: 5, Blocks: 2}
	repl, recon, ok := v.ReplaceDeadOp(op)
	if !ok || recon || len(repl) != 1 || repl[0] != op {
		t.Errorf("live op replaced: %+v", repl)
	}

	// Dead-slot writes are dropped; dead-slot reads become peer reads.
	repl, _, ok = v.ReplaceDeadOp(MemberOp{Slot: 1, Op: core.Write, LBN: 5, Blocks: 2})
	if !ok || len(repl) != 0 {
		t.Errorf("dead write: repl=%v ok=%v", repl, ok)
	}
	repl, recon, ok = v.ReplaceDeadOp(MemberOp{Slot: 1, Op: core.Read, LBN: 5, Blocks: 2})
	if !ok || !recon || len(repl) != 3 {
		t.Errorf("dead read: repl=%v recon=%v ok=%v", repl, recon, ok)
	}

	// Below the rebuild watermark the spare serves the original op.
	v.BeginRebuild()
	v.Advance(16)
	repl, recon, ok = v.ReplaceDeadOp(MemberOp{Slot: 1, Op: core.Read, LBN: 5, Blocks: 2})
	if !ok || recon || len(repl) != 1 || repl[0].Slot != 1 {
		t.Errorf("covered dead read: repl=%v", repl)
	}

	// After loss, reads are unreachable and writes still drop silently.
	if err := v.Fail(3); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := v.ReplaceDeadOp(MemberOp{Slot: 0, Op: core.Read, LBN: 5, Blocks: 2}); ok {
		t.Error("read replaced on a lost volume")
	}
	if _, _, ok := v.ReplaceDeadOp(MemberOp{Slot: 0, Op: core.Write, LBN: 5, Blocks: 2}); !ok {
		t.Error("write not droppable on a lost volume")
	}
}

func TestVolumeEpochAndReset(t *testing.T) {
	v := mustVolume(t, parityCfg())
	e0 := v.Epoch()
	if err := v.Fail(0); err != nil {
		t.Fatal(err)
	}
	if v.Epoch() == e0 {
		t.Error("failure did not bump the epoch")
	}
	v.BeginRebuild()
	v.Advance(64)
	v.FinishRebuild()
	if v.Epoch() <= e0+1 {
		t.Error("failover did not bump the epoch")
	}
	v.Reset()
	if v.Epoch() != 0 || v.Degraded() || v.Lost() || v.Rebuilding() {
		t.Error("reset left failover state behind")
	}
	if dev := v.DeviceOf(0); dev != 0 {
		t.Errorf("reset slot mapping: %d", dev)
	}
}
