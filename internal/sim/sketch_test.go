// sketch_test.go covers Options.Sketch: the bounded-quantile-sketch
// backend for every percentile-bearing aggregate a run owns. Two
// properties matter: sketched runs retain no per-observation memory
// (the O(1) model million-request runs depend on), and their p95/p99
// stay within the sketch's documented relative-error bound of the
// exact run's values. The default path is pinned byte-identical by the
// golden equivalence suite, not here.
package sim

import (
	"math"
	"testing"

	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

// sketchBound is the asserted relative error at p50/p95/p99: the
// sketch's geometric bound (±1%) plus rank-discretization slack, the
// same bound DESIGN.md documents and internal/stats property-tests.
const sketchBound = 0.02

func relErrOK(t *testing.T, label string, got, want float64) {
	t.Helper()
	den := math.Abs(want)
	if den < 1e-9 {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: %g vs exact %g", label, got, want)
		}
		return
	}
	if e := math.Abs(got-want) / den; e > sketchBound {
		t.Errorf("%s: %g vs exact %g (rel err %.4f > %.4f)", label, got, want, e, sketchBound)
	}
}

// assertSketched asserts a Dist is in sketch mode and retains nothing.
func assertSketched(t *testing.T, label string, d *stats.Dist) {
	t.Helper()
	if !d.Sketched() {
		t.Errorf("%s: not sketched", label)
	}
	if n := d.Retained(); n != 0 {
		t.Errorf("%s: retained %d observations, want 0", label, n)
	}
}

// TestSketchOpenRun compares a sketched open-arrival run against its
// exact twin: identical Welford results, zero retained observations,
// percentiles within the documented bound.
func TestSketchOpenRun(t *testing.T) {
	run := func(sk bool) Result {
		d := mems.MustDevice(mems.DefaultConfig())
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 4000, 1)
		return Run(nil, d, sched.NewSPTF(), src,
			Options{Warmup: 200, Probe: NewPhaseCollector(), Sketch: sk})
	}
	exact, sketched := run(false), run(true)

	// The Welford aggregates never go through the sketch: the runs must
	// agree exactly on everything but percentiles.
	if exact.Requests != sketched.Requests ||
		exact.Response.Mean() != sketched.Response.Mean() ||
		exact.Elapsed != sketched.Elapsed {
		t.Fatalf("sketch changed the simulation: %+v vs %+v", exact, sketched)
	}
	if exact.Phases == nil || sketched.Phases == nil {
		t.Fatal("phase collector missing")
	}
	if exact.Phases.Requests != sketched.Phases.Requests {
		t.Fatalf("phase request counts diverged")
	}
	// Exact mode retains every observation; sketch mode none.
	if n := exact.Phases.Service.Retained(); n != exact.Phases.Requests {
		t.Fatalf("exact mode retained %d of %d", n, exact.Phases.Requests)
	}
	for label, d := range map[string]*stats.Dist{
		"service":     &sketched.Phases.Service,
		"seek":        &sketched.Phases.Seek,
		"settle":      &sketched.Phases.Settle,
		"positioning": &sketched.Phases.Positioning,
		"recovery":    &sketched.Phases.Recovery,
	} {
		assertSketched(t, label, d)
	}
	for i := range sketched.Phases.ClassService {
		assertSketched(t, "class service", &sketched.Phases.ClassService[i])
	}
	for _, p := range []float64{50, 95, 99} {
		relErrOK(t, "service percentile",
			sketched.Phases.Service.Percentile(p), exact.Phases.Service.Percentile(p))
		relErrOK(t, "positioning percentile",
			sketched.Phases.Positioning.Percentile(p), exact.Phases.Positioning.Percentile(p))
	}
}

// TestSketchCollectorReset pins the mode's stickiness across runs: a
// collector flipped by one sketched run stays sketched after the
// engine's ResetProbe on the next run.
func TestSketchCollectorReset(t *testing.T) {
	pc := NewPhaseCollector()
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(sk bool) {
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 500, 1)
		Run(nil, d, sched.NewSPTF(), src, Options{Probe: pc, Sketch: sk})
	}
	run(true)
	run(true)
	if !pc.Stats().Service.Sketched() || pc.Stats().Service.Retained() != 0 {
		t.Fatal("sketch mode lost across ResetProbe")
	}
	if n := pc.Stats().Requests; n != 500 {
		t.Fatalf("second run folded %d requests, want 500", n)
	}
}

// TestSketchVolumeRun repeats the memory assertion in the volume
// regime: VolumeStats and per-member phase aggregates must both be
// bounded under Options.Sketch, including through a failure + rebuild.
func TestSketchVolumeRun(t *testing.T) {
	run := func(sk bool) Result {
		spec := volFixtures(t, parityVolCfg(), 1)
		arr := make([]float64, 400)
		lbns := make([]int64, len(arr))
		for i := range arr {
			arr[i] = float64(i) * 3
			lbns[i] = int64(i % 128)
		}
		res, err := RunVolume(nil, spec, workload.NewFromSlice(volReqs(arr, 0, lbns)),
			Options{Probe: NewPhaseCollector(), Sketch: sk,
				Injector: devEvents(t, fault.DeviceEvent{AtMs: 150, Dev: 1})})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact, sketched := run(false), run(true)
	if exact.Requests != sketched.Requests || exact.Elapsed != sketched.Elapsed {
		t.Fatalf("sketch changed the volume simulation")
	}
	vs := sketched.Volume
	if vs == nil {
		t.Fatal("no volume stats")
	}
	assertSketched(t, "healthy", &vs.Healthy)
	assertSketched(t, "degraded", &vs.Degraded)
	for i := range vs.ClassResponse {
		assertSketched(t, "class response", &vs.ClassResponse[i])
	}
	for i := range sketched.Members {
		if ph := sketched.Members[i].Phases; ph != nil {
			assertSketched(t, "member service", &ph.Service)
		}
	}
	relErrOK(t, "healthy p95", vs.Healthy.P95(), exact.Volume.Healthy.P95())
}

// TestSketchMillionO1Memory is the acceptance check in miniature run
// large: a high-volume open run under Options.Sketch retains zero
// observations while its exact twin would have retained every one, and
// the sketch's bucket footprint stays under the hard cap regardless of
// request count.
func TestSketchMillionO1Memory(t *testing.T) {
	n := 200000
	if testing.Short() {
		n = 20000
	}
	d := mems.MustDevice(mems.DefaultConfig())
	src := workload.DefaultRandom(1100, 512, d.Capacity(), n, 1)
	res := Run(nil, d, sched.NewSPTF(), src,
		Options{Warmup: n / 10, Probe: NewPhaseCollector(), Sketch: true})
	if res.Phases == nil || res.Phases.Requests < n/2 {
		t.Fatalf("run too small to prove anything: %+v", res.Phases)
	}
	if got := res.Phases.Service.Retained(); got != 0 {
		t.Fatalf("sketched run retained %d observations at n=%d", got, n)
	}
	if p95, p99 := res.Phases.Service.P95(), res.Phases.Service.P99(); p95 <= 0 || p99 < p95 {
		t.Fatalf("degenerate percentiles: p95=%g p99=%g", p95, p99)
	}
}
