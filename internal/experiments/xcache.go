package experiments

import (
	"math/rand"

	"memsim/internal/cache"
	"memsim/internal/core"
	"memsim/internal/runner"
)

func init() { register("cache", cachePlan) }

// CacheStudy quantifies §2.4.11 (extension; no paper figure): the
// on-device speed-matching buffer matters for sequential streams
// (read-ahead turns per-request positioning into streaming) and is
// nearly worthless for random traffic, whose reuse belongs in host
// memory. Sequential 64 KB scans and random 4 KB reads run with the
// buffer enabled and disabled.
func CacheStudy(p Params) []Table { return mustRun(cachePlan(p)) }

func cachePlan(p Params) *Plan {
	n := p.ClosedRequests
	if n > 2000 {
		n = 2000
	}

	type variant struct {
		label  string
		blocks int
		seq    bool
		mode   string
	}
	var variants []variant
	for _, seq := range []bool{true, false} {
		label, blocks := "sequential 64 KB scan", 128
		if !seq {
			label, blocks = "random 4 KB reads", 8
		}
		for _, mode := range []string{"off", "fixed", "adaptive"} {
			variants = append(variants, variant{label, blocks, seq, mode})
		}
	}

	jobs := make([]*runner.Job, len(variants))
	for i, v := range variants {
		jobs[i] = &runner.Job{
			Label: "cache " + v.label + " " + v.mode,
			Seed:  p.Seed,
			Custom: func(*runner.Job) any {
				dev := newMEMS(1)
				var d core.Device = dev
				var c *cache.Cache
				if v.mode != "off" {
					cfg := cache.DefaultConfig()
					cfg.AdaptivePrefetch = v.mode == "adaptive"
					c = cache.New(dev, cfg)
					d = c
				}
				rng := rand.New(rand.NewSource(p.Seed))
				now, sum := 0.0, 0.0
				for i := 0; i < n; i++ {
					lbn := int64(i * v.blocks)
					if !v.seq {
						lbn = rng.Int63n(d.Capacity() - int64(v.blocks))
					}
					svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: v.blocks}, now)
					now += svc
					sum += svc
				}
				mean := sum / float64(n)
				bw := float64(v.blocks) * 512 / (mean / 1000) / 1e6
				hit := "—"
				if c != nil {
					hit = f2(c.HitRate())
				}
				return []string{v.label, v.mode, ms(mean), hit, f2(bw)}
			},
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      "cache",
				Title:   "speed-matching buffer (4 MB, track read-ahead) on the MEMS device",
				Columns: []string{"workload", "buffer", "mean service(ms)", "hit rate", "MB/s"},
			}
			for _, j := range jobs {
				t.AddRow(j.Value().([]string)...)
			}
			return []Table{t}
		},
	}
}
