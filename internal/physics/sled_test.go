package physics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperSled returns a sled with the default parameters of Table 1 of the
// paper: 803.6 m/s² acceleration, 75% spring factor, ±50 µm travel.
func paperSled() *Sled {
	return &Sled{Accel: 803.6, SpringFactor: 0.75, HalfRange: 50e-6}
}

func noSpringSled() *Sled {
	return &Sled{Accel: 803.6, SpringFactor: 0, HalfRange: 50e-6}
}

const accessSpeed = 0.028 // m/s, 700 Kbit/s at 40 nm per bit

func TestOmega(t *testing.T) {
	s := paperSled()
	want := math.Sqrt(0.75 * 803.6 / 50e-6)
	if got := s.Omega(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Omega = %g, want %g", got, want)
	}
	if got := noSpringSled().Omega(); got != 0 {
		t.Errorf("no-spring Omega = %g, want 0", got)
	}
}

func TestZeroSeek(t *testing.T) {
	for _, s := range []*Sled{paperSled(), noSpringSled()} {
		if got := s.SeekTime(10e-6, 0.01, 10e-6, 0.01); got != 0 {
			t.Errorf("identical states should take 0 time, got %g", got)
		}
	}
}

func TestNoSpringRestToRest(t *testing.T) {
	// Without a spring, a rest-to-rest seek of distance d takes 2·sqrt(d/a).
	s := noSpringSled()
	for _, d := range []float64{1e-6, 10e-6, 50e-6, 100e-6} {
		want := 2 * math.Sqrt(d/s.Accel)
		if got := s.SeekTime(0, 0, d, 0); math.Abs(got-want) > 1e-12 {
			t.Errorf("d=%g: seek=%g, want %g", d, got, want)
		}
		// Symmetric in direction.
		if got := s.SeekTime(0, 0, -d, 0); math.Abs(got-want) > 1e-12 {
			t.Errorf("d=-%g: seek=%g, want %g", d, got, want)
		}
	}
}

func TestNoSpringTurnaround(t *testing.T) {
	// Without a spring, reversing velocity v takes exactly 2v/a anywhere.
	s := noSpringSled()
	want := 2 * accessSpeed / s.Accel
	for _, y := range []float64{-50e-6, 0, 30e-6} {
		if got := s.TurnaroundTime(y, accessSpeed); math.Abs(got-want) > 1e-12 {
			t.Errorf("turnaround at y=%g: %g, want %g", y, got, want)
		}
	}
}

func TestSpringTurnaroundAtCenter(t *testing.T) {
	// At the sled center the spring force is negligible over the tiny
	// turnaround excursion (~0.5 nm), so the time approaches 2v/a
	// ≈ 0.0697 ms — the paper's "0.063 ms average" regime (Table 2 note).
	s := paperSled()
	got := s.TurnaroundTime(0, accessSpeed)
	want := 2 * accessSpeed / s.Accel
	if math.Abs(got-want) > want*0.01 {
		t.Errorf("center turnaround = %g s, want ≈ %g s", got, want)
	}
}

func TestSpringTurnaroundAsymmetry(t *testing.T) {
	// §2.4.4: turnarounds near the edges take either less time or more,
	// depending on the direction of sled motion. At +edge, reversing
	// outward motion (spring assists both phases) must beat reversing
	// inward motion (spring opposes), and the center case sits between.
	s := paperSled()
	edge := s.HalfRange
	assisted := s.TurnaroundTime(edge, accessSpeed) // moving outward, turn back
	opposed := s.TurnaroundTime(edge, -accessSpeed) // moving inward, turn out
	center := s.TurnaroundTime(0, accessSpeed)
	if !(assisted < center && center < opposed) {
		t.Errorf("want assisted < center < opposed, got %g, %g, %g",
			assisted, center, opposed)
	}
	// Effective acceleration at the edge is (1±0.75)·a, so the ratio of
	// opposed to assisted turnaround should be near (1.75/0.25) = 7 for
	// these tiny excursions.
	ratio := opposed / assisted
	if ratio < 5 || ratio > 9 {
		t.Errorf("opposed/assisted ratio = %g, want ≈ 7", ratio)
	}
}

func TestSpringEdgeSeeksSlower(t *testing.T) {
	// §5.1 / Fig. 9: short seeks near the edges take longer than the same
	// seeks near the center, because the springs reduce the effective
	// actuator force there.
	s := paperSled()
	d := 8e-6 // an 8 µm hop
	center := s.SeekTime(-d/2, 0, d/2, 0)
	edgeOut := s.SeekTime(s.HalfRange-d, 0, s.HalfRange, 0)
	if edgeOut <= center {
		t.Errorf("edge seek (%g) should be slower than center seek (%g)", edgeOut, center)
	}
}

func TestFullStrokeSeekTime(t *testing.T) {
	// Full-stroke rest-to-rest with the spring assisting both the launch
	// (from −edge) and the arrival (into +edge) should be faster than the
	// springless 2·sqrt(d/a) time, and in the ballpark derived in
	// DESIGN.md (≈ 0.55 ms vs 0.71 ms).
	s := paperSled()
	d := 2 * s.HalfRange
	withSpring := s.SeekTime(-s.HalfRange, 0, s.HalfRange, 0)
	noSpring := 2 * math.Sqrt(d/s.Accel)
	if withSpring >= noSpring {
		t.Errorf("spring-assisted full stroke %g should beat %g", withSpring, noSpring)
	}
	if withSpring < 0.4e-3 || withSpring > 0.7e-3 {
		t.Errorf("full stroke = %g s, expected ≈ 0.55 ms", withSpring)
	}
}

func TestPlanReachesTargetClosedForm(t *testing.T) {
	// Property: applying the plan with the exact evolution lands on the
	// target state.
	s := paperSled()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		x0 := (rng.Float64()*2 - 1) * s.HalfRange
		x1 := (rng.Float64()*2 - 1) * s.HalfRange
		v0 := (rng.Float64()*2 - 1) * 5 * accessSpeed
		v1 := (rng.Float64()*2 - 1) * 5 * accessSpeed
		p, ok := s.SeekPlan(x0, v0, x1, v1)
		if !ok {
			t.Fatalf("no plan for (%g,%g)→(%g,%g)", x0, v0, x1, v1)
		}
		xf, vf := s.Apply(x0, v0, p)
		if math.Abs(xf-x1) > 1e-9 || math.Abs(vf-v1) > 1e-6 {
			t.Fatalf("plan %v misses target: (%g,%g)→(%g,%g), got (%g,%g)",
				p, x0, v0, x1, v1, xf, vf)
		}
	}
}

func TestPlanReachesTargetRK4(t *testing.T) {
	// Cross-validate the closed-form oscillator solution against a dumb
	// RK4 integration of the same ODE.
	for _, s := range []*Sled{paperSled(), noSpringSled()} {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 200; i++ {
			x0 := (rng.Float64()*2 - 1) * s.HalfRange
			x1 := (rng.Float64()*2 - 1) * s.HalfRange
			v0 := (rng.Float64()*2 - 1) * 3 * accessSpeed
			v1 := (rng.Float64()*2 - 1) * 3 * accessSpeed
			p, ok := s.SeekPlan(x0, v0, x1, v1)
			if !ok {
				t.Fatalf("no plan for (%g,%g)→(%g,%g)", x0, v0, x1, v1)
			}
			xf, vf := s.Integrate(x0, v0, p, 1e-7)
			if math.Abs(xf-x1) > 5e-9 || math.Abs(vf-v1) > 5e-5 {
				t.Fatalf("RK4 disagrees for plan %v: want (%g,%g), got (%g,%g)",
					p, x1, v1, xf, vf)
			}
		}
	}
}

func TestSeekTimeNonNegativeAndSymmetric(t *testing.T) {
	s := paperSled()
	f := func(a, b int16) bool {
		x0 := float64(a) / math.MaxInt16 * s.HalfRange
		x1 := float64(b) / math.MaxInt16 * s.HalfRange
		t1 := s.SeekTime(x0, 0, x1, 0)
		t2 := s.SeekTime(-x0, 0, -x1, 0) // mirror symmetry of the spring
		t3 := s.SeekTime(x1, 0, x0, 0)   // reversal symmetry at rest
		return t1 >= 0 && math.Abs(t1-t2) < 1e-12 && math.Abs(t1-t3) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeekTimeMonotonicInDistanceFromCenter(t *testing.T) {
	// From rest at center, seeking farther should never be faster.
	s := paperSled()
	prev := 0.0
	for d := 0.0; d <= s.HalfRange; d += s.HalfRange / 200 {
		cur := s.SeekTime(0, 0, d, 0)
		if cur+1e-12 < prev {
			t.Fatalf("seek time decreased: d=%g t=%g prev=%g", d, cur, prev)
		}
		prev = cur
	}
}

func TestEvolveMatchesIntegrate(t *testing.T) {
	s := paperSled()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		x := (rng.Float64()*2 - 1) * s.HalfRange
		v := (rng.Float64()*2 - 1) * 0.1
		u := 1
		if rng.Intn(2) == 0 {
			u = -1
		}
		dt := rng.Float64() * 5e-4
		x1, v1 := s.Evolve(x, v, u, dt)
		x2, v2 := s.integratePhase(x, v, u, dt, 1e-7)
		if math.Abs(x1-x2) > 1e-9 || math.Abs(v1-v2) > 1e-5 {
			t.Fatalf("evolve (%g,%g) vs RK4 (%g,%g)", x1, v1, x2, v2)
		}
	}
}

func TestSeekFallbackComposition(t *testing.T) {
	// Even when forced through the composed fallback path (which needs no
	// direct two-phase plan), SeekTime must terminate and be positive.
	// With the paper parameters every random case has a direct plan, so
	// exercise the fallback arithmetic directly via the midpoint identity.
	s := paperSled()
	x0, x1 := -40e-6, 40e-6
	direct := s.SeekTime(x0, 0, x1, 0)
	viaMid := s.SeekTime(x0, 0, 0, 0) + s.SeekTime(0, 0, x1, 0)
	if direct > viaMid+1e-12 {
		t.Errorf("direct seek (%g) should not exceed stop-at-midpoint (%g)", direct, viaMid)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{U1: 1, T1: 0.001, U2: -1, T2: 0.002}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkSeekSolverClosedForm(b *testing.B) {
	s := paperSled()
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = (rng.Float64()*2 - 1) * s.HalfRange
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SeekTime(xs[i%1024], 0, xs[(i+7)%1024], 0)
	}
}

func BenchmarkSeekSolverRK4Reference(b *testing.B) {
	// Ablation partner for BenchmarkSeekSolverClosedForm: the cost of
	// verifying one plan by numerical integration at 0.1 µs steps.
	s := paperSled()
	p, _ := s.SeekPlan(-40e-6, 0, 40e-6, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Integrate(-40e-6, 0, p, 1e-7)
	}
}
